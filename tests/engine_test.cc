#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "workload/generator.h"

namespace rjoin::core {
namespace {

/// Everything needed to run one in-process RJoin network.
struct Harness {
  Harness(size_t nodes, EngineConfig cfg,
          std::unique_ptr<sim::LatencyModel> lat, sql::Catalog cat,
          uint64_t seed = 7)
      : catalog(std::move(cat)),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(std::move(lat)),
        metrics(network->num_total()),
        transport(network.get(), &simulator, latency.get(), &metrics,
                  Rng(seed * 31)),
        engine(cfg, &catalog, network.get(), &transport, &simulator,
               &metrics) {}

  uint64_t Submit(dht::NodeIndex owner, const std::string& text) {
    auto id = engine.SubmitQuerySql(owner, text);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    simulator.Run();
    return *id;
  }

  sql::TuplePtr Publish(dht::NodeIndex node, const std::string& rel,
                        std::vector<int64_t> ints) {
    std::vector<sql::Value> vals;
    vals.reserve(ints.size());
    for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
    auto t = engine.PublishTuple(node, rel, vals);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    simulator.Run();
    return t->Materialize();
  }

  /// Advances the clock without events (stream inter-arrival gap).
  void Tick(uint64_t dt) { simulator.RunUntil(simulator.Now() + dt); }

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  std::unique_ptr<sim::LatencyModel> latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
};

sql::Catalog TestCatalog() {
  sql::Catalog c;
  EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B", "C"})).ok());
  EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B", "C"})).ok());
  EXPECT_TRUE(c.AddRelation(sql::Schema("P", {"A", "B", "C"})).ok());
  EXPECT_TRUE(c.AddRelation(sql::Schema("M", {"A", "B", "C"})).ok());
  return c;
}

EngineConfig HistoryConfig() {
  EngineConfig cfg;
  cfg.keep_history = true;
  return cfg;
}

std::vector<std::string> SortedRowKeys(const std::vector<Answer>& answers) {
  std::vector<std::string> keys;
  keys.reserve(answers.size());
  for (const auto& a : answers) keys.push_back(sql::AnswerRowKey(a.row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> SortedRowKeys(
    const std::vector<std::vector<sql::Value>>& rows) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const auto& r : rows) keys.push_back(sql::AnswerRowKey(r));
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Readable multiset comparison: reports the rows only one side has.
std::string MultisetDiff(const std::vector<std::string>& got,
                         const std::vector<std::string>& expected) {
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), got.begin(),
                      got.end(), std::back_inserter(missing));
  std::set_difference(got.begin(), got.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  std::string out = "got " + std::to_string(got.size()) + " rows, expected " +
                    std::to_string(expected.size());
  out += "; missing: ";
  for (const auto& m : missing) out += "(" + m + ") ";
  out += "; extra: ";
  for (const auto& e : extra) out += "(" + e + ") ";
  return out;
}

// ------------------------------------------------------------- Basics ----

TEST(EngineTest, TwoWayJoinProducesAnswer) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q =
      h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A = S.A");
  h.Publish(1, "R", {7, 10, 11});
  h.Publish(2, "S", {7, 20, 21});
  auto answers = h.engine.AnswersFor(q);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].row[0], sql::Value::Int(10));
  EXPECT_EQ(answers[0].row[1], sql::Value::Int(21));
}

TEST(EngineTest, NonJoiningTuplesProduceNothing) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(1, "R", {7, 10, 11});
  h.Publish(2, "S", {8, 20, 21});
  EXPECT_TRUE(h.engine.AnswersFor(q).empty());
}

TEST(EngineTest, TuplesBeforeSubmissionAreExcluded) {
  // Definition 1: only tuples with pubT >= insT participate.
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  h.Publish(1, "R", {7, 10, 11});
  h.Tick(10);
  const uint64_t q = h.Submit(0, "SELECT R.B, S.C FROM R, S WHERE R.A=S.A");
  h.Publish(2, "S", {7, 20, 21});
  EXPECT_TRUE(h.engine.AnswersFor(q).empty());
}

TEST(EngineTest, ArrivalOrderDoesNotMatter) {
  // All 3! arrival orders of a 3-way join produce the same single answer.
  const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& order : orders) {
    Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
              TestCatalog());
    const uint64_t q = h.Submit(
        0, "SELECT R.B, P.C FROM R, S, P WHERE R.A=S.A AND S.B=P.B");
    struct Pub {
      const char* rel;
      std::vector<int64_t> vals;
    };
    const Pub pubs[3] = {{"R", {1, 5, 0}}, {"S", {1, 6, 0}}, {"P", {0, 6, 9}}};
    for (int i : order) {
      h.Publish(static_cast<dht::NodeIndex>(i + 1), pubs[i].rel,
                pubs[i].vals);
      h.Tick(4);
    }
    auto answers = h.engine.AnswersFor(q);
    ASSERT_EQ(answers.size(), 1u) << "order " << order[0] << order[1]
                                  << order[2];
    EXPECT_EQ(answers[0].row[0], sql::Value::Int(5));
    EXPECT_EQ(answers[0].row[1], sql::Value::Int(9));
  }
}

TEST(EngineTest, SelectionPredicatesFilter) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q =
      h.Submit(0, "SELECT R.B FROM R, S WHERE R.A=S.A AND S.B=5");
  h.Publish(1, "R", {1, 10, 0});
  h.Publish(2, "S", {1, 4, 0});  // S.B != 5: no answer
  EXPECT_TRUE(h.engine.AnswersFor(q).empty());
  h.Publish(2, "S", {1, 5, 0});  // S.B == 5: answer
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(EngineTest, MultipleQueriesGetIndependentAnswers) {
  Harness h(32, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q1 = h.Submit(0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  const uint64_t q2 = h.Submit(5, "SELECT R.C, P.C FROM R,P WHERE R.B=P.B");
  h.Publish(1, "R", {1, 2, 3});
  h.Publish(2, "S", {1, 7, 0});
  h.Publish(3, "P", {0, 2, 9});
  EXPECT_EQ(h.engine.AnswersFor(q1).size(), 1u);
  EXPECT_EQ(h.engine.AnswersFor(q2).size(), 1u);
  EXPECT_EQ(h.engine.AnswersFor(q1)[0].row[1], sql::Value::Int(7));
  EXPECT_EQ(h.engine.AnswersFor(q2)[0].row[1], sql::Value::Int(9));
}

TEST(EngineTest, EachTupleCombinationAnsweredOnce) {
  // Theorem 2: no accidental duplicates. 2 R-tuples x 2 S-tuples, all
  // joining => exactly 4 answers.
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  h.Publish(1, "R", {1, 100, 0});
  h.Publish(2, "R", {1, 200, 0});
  h.Publish(3, "S", {1, 300, 0});
  h.Publish(4, "S", {1, 400, 0});
  auto answers = h.engine.AnswersFor(q);
  EXPECT_EQ(answers.size(), 4u);
  // All four combinations distinct.
  auto keys = SortedRowKeys(answers);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(keys.size(), 4u);
}

// ----------------------------------------------- Example 2 and DISTINCT --

TEST(EngineTest, Example2BagSemanticsDeliversDuplicates) {
  // Paper Example 2: R(1,2,3); S(b,2,c); S(b,2,e) => (1,b) twice. Our test
  // catalog is integer-only, so b := 8.
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(0, "SELECT R.A, S.A FROM R,S WHERE R.B=S.B");
  h.Publish(1, "R", {1, 2, 3});
  h.Publish(2, "S", {8, 2, 30});
  h.Publish(3, "S", {8, 2, 50});
  auto answers = h.engine.AnswersFor(q);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(sql::AnswerRowKey(answers[0].row),
            sql::AnswerRowKey(answers[1].row));
}

TEST(EngineTest, DistinctSuppressesExample2Duplicates) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q =
      h.Submit(0, "SELECT DISTINCT R.A, S.A FROM R,S WHERE R.B=S.B");
  h.Publish(1, "R", {1, 2, 3});
  h.Publish(2, "S", {8, 2, 30});
  h.Publish(3, "S", {8, 2, 50});
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(EngineTest, DistinctStillDeliversDifferentRows) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q =
      h.Submit(0, "SELECT DISTINCT R.A, S.A FROM R,S WHERE R.B=S.B");
  h.Publish(1, "R", {1, 2, 3});
  h.Publish(2, "S", {8, 2, 30});
  h.Publish(3, "S", {9, 2, 50});  // Different S.A: a genuinely new row.
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 2u);
}

// ----------------------------------------------------------- Windows ----

TEST(EngineTest, SlidingTimeWindowExpiresCombinations) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(
      0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A WINDOW 50 TIME");
  h.Publish(1, "R", {1, 10, 0});
  h.Tick(200);  // Far beyond the window.
  h.Publish(2, "S", {1, 20, 0});
  EXPECT_TRUE(h.engine.AnswersFor(q).empty());

  // Within the window, the join fires.
  h.Publish(3, "R", {2, 11, 0});
  h.Tick(10);
  h.Publish(4, "S", {2, 21, 0});
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(EngineTest, TupleWindowCountsArrivals) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(
      0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A WINDOW 3 TUPLES");
  h.Publish(1, "R", {1, 10, 0});  // seq 1
  h.Publish(2, "P", {0, 0, 0});   // seq 2 (unrelated stream traffic)
  h.Publish(3, "S", {1, 20, 0});  // seq 3: within 3-tuple window of seq 1
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);

  h.Publish(1, "R", {2, 11, 0});  // seq 4
  h.Publish(2, "P", {0, 0, 0});   // seq 5
  h.Publish(2, "P", {0, 0, 0});   // seq 6
  h.Publish(3, "S", {2, 21, 0});  // seq 7: outside window of seq 4
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(EngineTest, TumblingWindowSeparatesEpochs) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  const uint64_t q = h.Submit(
      0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A WINDOW 1000 TIME TUMBLING");
  // Move into the middle of an epoch boundary region: publish R near the
  // end of epoch 0 and S at the start of epoch 1.
  h.Tick(990 - h.simulator.Now() % 1000);
  h.Publish(1, "R", {1, 10, 0});
  h.Tick(30);  // Now in epoch 1.
  h.Publish(2, "S", {1, 20, 0});
  EXPECT_TRUE(h.engine.AnswersFor(q).empty());
  // Same epoch joins.
  h.Publish(3, "R", {2, 11, 0});
  h.Tick(5);
  h.Publish(4, "S", {2, 21, 0});
  EXPECT_EQ(h.engine.AnswersFor(q).size(), 1u);
}

TEST(EngineTest, WindowGcReducesStoredState) {
  auto run = [](uint64_t window) {
    Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
              TestCatalog());
    h.Submit(0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A WINDOW " +
                    std::to_string(window) + " TIME");
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      h.Publish(1, "R", {static_cast<int64_t>(rng.NextBounded(4)), i, 0});
      h.Tick(20);
      h.engine.SweepWindows();
    }
    int64_t stored = 0;
    for (const auto& m : h.metrics.all_nodes()) stored += m.storage_current;
    return stored;
  };
  // A small window must retain (much) less state than a huge one.
  EXPECT_LT(run(40), run(100000));
}

// ------------------------------------- Message delays and the ALTT fix --

TEST(EngineTest, Example1RaceLosesAnswersWithoutAltt) {
  // Submit the query and publish the matching tuple concurrently under
  // scrambled latencies. Without the ALTT some interleavings lose the
  // answer; with it, none do (Theorem 1).
  int lost_without_altt = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (bool altt : {false, true}) {
      EngineConfig cfg = HistoryConfig();
      cfg.enable_altt = altt;
      cfg.altt_delta = 1 << 20;  // Ample Delta.
      Harness h(24, cfg, std::make_unique<sim::UniformLatency>(1, 60),
                TestCatalog(), seed);
      auto qid = h.engine.SubmitQuerySql(
          0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
      ASSERT_TRUE(qid.ok());
      // Publish immediately: query and tuples race through the network.
      ASSERT_TRUE(h.engine
                      .PublishTuple(3, "R",
                                    {sql::Value::Int(1), sql::Value::Int(2),
                                     sql::Value::Int(3)})
                      .ok());
      ASSERT_TRUE(h.engine
                      .PublishTuple(9, "S",
                                    {sql::Value::Int(1), sql::Value::Int(5),
                                     sql::Value::Int(6)})
                      .ok());
      h.simulator.Run();
      const size_t got = h.engine.AnswersFor(*qid).size();
      if (altt) {
        EXPECT_EQ(got, 1u) << "ALTT enabled must never lose answers, seed "
                           << seed;
      } else if (got == 0) {
        ++lost_without_altt;
      }
    }
  }
  // The race must actually bite in at least one interleaving, otherwise
  // this test exercises nothing.
  EXPECT_GT(lost_without_altt, 0);
}

TEST(EngineTest, AutoAlttDeltaIsPositive) {
  Harness h(64, EngineConfig{}, std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  EXPECT_GT(h.engine.altt_delta(), 0u);
}

// ------------------------------------------------------- Validation ----

TEST(EngineTest, RejectsMalformedSql) {
  Harness h(8, EngineConfig{}, std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  EXPECT_FALSE(h.engine.SubmitQuerySql(0, "SELEKT broken").ok());
}

TEST(EngineTest, RejectsUnknownRelationInQuery) {
  Harness h(8, EngineConfig{}, std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  EXPECT_FALSE(
      h.engine.SubmitQuerySql(0, "SELECT X.A FROM X,R WHERE X.A=R.A").ok());
}

TEST(EngineTest, RejectsBadTuples) {
  Harness h(8, EngineConfig{}, std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  EXPECT_FALSE(h.engine.PublishTuple(0, "Nope", {sql::Value::Int(1)}).ok());
  EXPECT_FALSE(h.engine.PublishTuple(0, "R", {sql::Value::Int(1)}).ok());
}

// ----------------------------------------------- Oracle equivalence ----

struct OracleParam {
  uint64_t seed;
  PlannerPolicy policy;
};

class OracleEquivalenceTest
    : public ::testing::TestWithParam<OracleParam> {};

TEST_P(OracleEquivalenceTest, EngineMatchesCentralizedEvaluator) {
  const OracleParam param = GetParam();

  workload::WorkloadParams wp;
  wp.num_relations = 4;
  wp.num_attributes = 3;
  wp.num_values = 4;  // Tiny domain: joins happen often.
  wp.zipf_theta = 0.5;
  auto catalog = workload::BuildCatalog(wp);

  EngineConfig cfg;
  cfg.keep_history = true;
  cfg.policy = param.policy;
  Harness h(24, cfg, std::make_unique<sim::FixedLatency>(1),
            std::move(*catalog), param.seed);

  workload::QueryGenerator qgen(wp, &h.catalog, param.seed * 3 + 1);
  std::vector<uint64_t> qids;
  for (int i = 0; i < 5; ++i) {
    auto id = h.engine.SubmitQuery(
        static_cast<dht::NodeIndex>(i), qgen.Next(2 + (i % 2)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    qids.push_back(*id);
  }
  h.simulator.Run();

  workload::TupleGenerator tgen(wp, &h.catalog, param.seed * 5 + 2);
  for (int i = 0; i < 50; ++i) {
    auto d = tgen.Next();
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 24),
                                  d.relation, std::move(d.values))
                    .ok());
    h.simulator.Run();
    h.Tick(3);
  }

  sql::CentralizedEvaluator oracle(&h.catalog);
  for (uint64_t qid : qids) {
    auto iq = h.engine.FindQuery(qid);
    ASSERT_NE(iq, nullptr);
    const auto expected =
        oracle.Evaluate(iq->spec(), iq->ins_time(), h.engine.history());
    const auto got = h.engine.AnswersFor(qid);
    const auto got_keys = SortedRowKeys(got);
    const auto exp_keys = SortedRowKeys(expected);
    EXPECT_EQ(got_keys, exp_keys)
        << "query " << qid << ": " << iq->spec().ToString() << "\n"
        << MultisetDiff(got_keys, exp_keys);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, OracleEquivalenceTest,
    ::testing::Values(
        OracleParam{1, PlannerPolicy::kRic},
        OracleParam{2, PlannerPolicy::kRic},
        OracleParam{3, PlannerPolicy::kRic},
        OracleParam{4, PlannerPolicy::kRic},
        OracleParam{5, PlannerPolicy::kFirstInClause},
        OracleParam{6, PlannerPolicy::kFirstInClause},
        OracleParam{7, PlannerPolicy::kRandom},
        OracleParam{8, PlannerPolicy::kRandom},
        OracleParam{9, PlannerPolicy::kWorst},
        OracleParam{10, PlannerPolicy::kWorst}),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      std::string name = PlannerPolicyName(info.param.policy);
      // gtest parameter names must be alphanumeric.
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name + "Seed" + std::to_string(info.param.seed);
    });

class WindowedOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowedOracleTest, WindowedEngineMatchesOracle) {
  const uint64_t seed = GetParam();
  workload::WorkloadParams wp;
  wp.num_relations = 3;
  wp.num_attributes = 3;
  wp.num_values = 3;
  wp.zipf_theta = 0.4;
  auto catalog = workload::BuildCatalog(wp);

  EngineConfig cfg;
  cfg.keep_history = true;
  Harness h(16, cfg, std::make_unique<sim::FixedLatency>(1),
            std::move(*catalog), seed);

  sql::WindowSpec window;
  window.use_windows = true;
  window.unit = sql::WindowSpec::Unit::kTuples;
  window.size = 8;

  workload::QueryGenerator qgen(wp, &h.catalog, seed * 3 + 1);
  std::vector<uint64_t> qids;
  for (int i = 0; i < 3; ++i) {
    auto id = h.engine.SubmitQuery(static_cast<dht::NodeIndex>(i),
                                   qgen.Next(2, window));
    ASSERT_TRUE(id.ok());
    qids.push_back(*id);
  }
  h.simulator.Run();

  workload::TupleGenerator tgen(wp, &h.catalog, seed * 5 + 2);
  for (int i = 0; i < 60; ++i) {
    auto d = tgen.Next();
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 16),
                                  d.relation, std::move(d.values))
                    .ok());
    h.simulator.Run();
    h.Tick(2);
    if (i % 10 == 9) h.engine.SweepWindows();
  }

  sql::CentralizedEvaluator oracle(&h.catalog);
  for (uint64_t qid : qids) {
    auto iq = h.engine.FindQuery(qid);
    const auto expected =
        oracle.Evaluate(iq->spec(), iq->ins_time(), h.engine.history());
    const auto got_keys = SortedRowKeys(h.engine.AnswersFor(qid));
    const auto exp_keys = SortedRowKeys(expected);
    EXPECT_EQ(got_keys, exp_keys) << iq->spec().ToString() << "\n"
                                  << MultisetDiff(got_keys, exp_keys);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class DistinctOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistinctOracleTest, DistinctEngineMatchesOracleSetSemantics) {
  const uint64_t seed = GetParam();
  workload::WorkloadParams wp;
  wp.num_relations = 3;
  wp.num_attributes = 2;
  wp.num_values = 2;  // Tiny: duplicates guaranteed.
  wp.zipf_theta = 0.3;
  auto catalog = workload::BuildCatalog(wp);

  EngineConfig cfg;
  cfg.keep_history = true;
  Harness h(16, cfg, std::make_unique<sim::FixedLatency>(1),
            std::move(*catalog), seed);

  workload::QueryGenerator qgen(wp, &h.catalog, seed * 3 + 1);
  sql::Query spec = qgen.Next(2);
  spec.distinct = true;
  auto qid = h.engine.SubmitQuery(0, spec);
  ASSERT_TRUE(qid.ok());
  h.simulator.Run();

  workload::TupleGenerator tgen(wp, &h.catalog, seed * 5 + 2);
  for (int i = 0; i < 40; ++i) {
    auto d = tgen.Next();
    ASSERT_TRUE(h.engine
                    .PublishTuple(static_cast<dht::NodeIndex>(i % 16),
                                  d.relation, std::move(d.values))
                    .ok());
    h.simulator.Run();
    h.Tick(2);
  }

  sql::CentralizedEvaluator oracle(&h.catalog);
  auto iq = h.engine.FindQuery(*qid);
  const auto expected =
      oracle.Evaluate(iq->spec(), iq->ins_time(), h.engine.history());
  EXPECT_EQ(SortedRowKeys(h.engine.AnswersFor(*qid)),
            SortedRowKeys(expected))
      << iq->spec().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistinctOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ Traffic properties ----

TEST(EngineTest, RicPolicyBeatsWorstOnSkewedWorkload) {
  auto run = [](PlannerPolicy policy) {
    workload::WorkloadParams wp;  // Paper defaults, smaller domain counts.
    wp.num_relations = 6;
    wp.num_attributes = 4;
    wp.num_values = 20;
    wp.zipf_theta = 0.9;
    auto catalog = workload::BuildCatalog(wp);
    EngineConfig cfg;
    cfg.policy = policy;
    Harness h(64, cfg, std::make_unique<sim::FixedLatency>(1),
              std::move(*catalog), 17);
    workload::QueryGenerator qgen(wp, &h.catalog, 100);
    for (int i = 0; i < 300; ++i) {
      auto id = h.engine.SubmitQuery(static_cast<dht::NodeIndex>(i % 64),
                                     qgen.Next(3));
      EXPECT_TRUE(id.ok());
    }
    h.simulator.Run();
    workload::TupleGenerator tgen(wp, &h.catalog, 200);
    for (int i = 0; i < 150; ++i) {
      auto d = tgen.Next();
      EXPECT_TRUE(h.engine
                      .PublishTuple(static_cast<dht::NodeIndex>(i % 64),
                                    d.relation, std::move(d.values))
                      .ok());
      h.simulator.Run();
      h.Tick(8);
    }
    return h.metrics.total_messages();
  };
  const uint64_t ric = run(PlannerPolicy::kRic);
  const uint64_t worst = run(PlannerPolicy::kWorst);
  EXPECT_LT(ric, worst);
}

TEST(EngineTest, PerNodeTrafficSumsToTotal) {
  Harness h(32, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  h.Submit(0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  h.Publish(1, "R", {1, 2, 3});
  h.Publish(2, "S", {1, 4, 5});
  uint64_t per_node = 0, per_node_ric = 0;
  for (const auto& m : h.metrics.all_nodes()) {
    per_node += m.messages_sent;
    per_node_ric += m.ric_messages_sent;
  }
  EXPECT_EQ(per_node, h.metrics.total_messages());
  EXPECT_EQ(per_node_ric, h.metrics.total_ric_messages());
  EXPECT_GE(per_node, per_node_ric);
}

TEST(EngineTest, QplCountsTupleAndQueryReceipts) {
  Harness h(16, HistoryConfig(), std::make_unique<sim::FixedLatency>(1),
            TestCatalog());
  h.Submit(0, "SELECT R.B, S.B FROM R,S WHERE R.A=S.A");
  const uint64_t before = h.metrics.total_qpl();
  h.Publish(1, "R", {1, 2, 3});
  // 6 NewTuple deliveries (3 attrs x 2 levels) + 1 Eval (the rewrite).
  EXPECT_EQ(h.metrics.total_qpl() - before, 7u);
}

}  // namespace
}  // namespace rjoin::core
