#include <gtest/gtest.h>

#include "dht/id.h"

namespace rjoin::dht {
namespace {

TEST(NodeIdTest, DefaultIsZero) {
  NodeId z;
  EXPECT_EQ(z.ToHex(), std::string(40, '0'));
}

TEST(NodeIdTest, FromKeyIsSha1) {
  // SHA-1("abc") known vector.
  EXPECT_EQ(NodeId::FromKey("abc").ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(NodeIdTest, HexRoundTrip) {
  const NodeId id = NodeId::FromKey("roundtrip");
  EXPECT_EQ(NodeId::FromHex(id.ToHex()), id);
}

TEST(NodeIdTest, FromUint64HoldsLowBits) {
  const NodeId id = NodeId::FromUint64(0x0123456789abcdefULL);
  EXPECT_EQ(id.ToHex(), "000000000000000000000000" "01234567" "89abcdef");
}

TEST(NodeIdTest, ComparisonIsNumeric) {
  EXPECT_LT(NodeId::FromUint64(1), NodeId::FromUint64(2));
  EXPECT_LT(NodeId::FromUint64(0xffffffffULL),
            NodeId::FromUint64(0x100000000ULL));
  EXPECT_LT(NodeId(), NodeId::Max());
}

TEST(NodeIdTest, AddCarriesAcrossWords) {
  const NodeId a = NodeId::FromUint64(0xffffffffffffffffULL);
  const NodeId one = NodeId::FromUint64(1);
  const NodeId sum = a.Add(one);
  // 2^64: bit 64 set.
  EXPECT_EQ(sum, NodeId().AddPowerOfTwo(64));
}

TEST(NodeIdTest, AddWrapsModulo2To160) {
  const NodeId max = NodeId::Max();
  EXPECT_EQ(max.Add(NodeId::FromUint64(1)), NodeId());
}

TEST(NodeIdTest, SubtractInvertsAdd) {
  const NodeId a = NodeId::FromKey("a");
  const NodeId b = NodeId::FromKey("b");
  EXPECT_EQ(a.Add(b).Subtract(b), a);
}

TEST(NodeIdTest, SubtractWraps) {
  const NodeId zero;
  const NodeId one = NodeId::FromUint64(1);
  EXPECT_EQ(zero.Subtract(one), NodeId::Max());
}

TEST(NodeIdTest, AddPowerOfTwoMatchesShift) {
  EXPECT_EQ(NodeId().AddPowerOfTwo(0), NodeId::FromUint64(1));
  EXPECT_EQ(NodeId().AddPowerOfTwo(33), NodeId::FromUint64(1ULL << 33));
  // 2^159 sets the top bit of the most significant word.
  EXPECT_EQ(NodeId().AddPowerOfTwo(159).ToHex(),
            "8000000000000000000000000000000000000000");
}

TEST(NodeIdTest, ToDoubleIsMonotone) {
  EXPECT_LT(NodeId::FromUint64(5).ToDouble(),
            NodeId::FromUint64(500).ToDouble());
  EXPECT_GT(NodeId().AddPowerOfTwo(159).ToDouble(),
            NodeId().AddPowerOfTwo(100).ToDouble());
}

TEST(IntervalTest, OpenClosedBasic) {
  const NodeId a = NodeId::FromUint64(10);
  const NodeId b = NodeId::FromUint64(20);
  EXPECT_TRUE(InIntervalOpenClosed(NodeId::FromUint64(15), a, b));
  EXPECT_TRUE(InIntervalOpenClosed(b, a, b));    // b included
  EXPECT_FALSE(InIntervalOpenClosed(a, a, b));   // a excluded
  EXPECT_FALSE(InIntervalOpenClosed(NodeId::FromUint64(25), a, b));
}

TEST(IntervalTest, OpenClosedWrapsAroundZero) {
  const NodeId a = NodeId::FromUint64(100);
  const NodeId b = NodeId::FromUint64(5);
  EXPECT_TRUE(InIntervalOpenClosed(NodeId::FromUint64(200), a, b));
  EXPECT_TRUE(InIntervalOpenClosed(NodeId::Max(), a, b));
  EXPECT_TRUE(InIntervalOpenClosed(NodeId(), a, b));
  EXPECT_TRUE(InIntervalOpenClosed(b, a, b));
  EXPECT_FALSE(InIntervalOpenClosed(NodeId::FromUint64(50), a, b));
}

TEST(IntervalTest, DegenerateIsWholeRing) {
  const NodeId a = NodeId::FromUint64(7);
  EXPECT_TRUE(InIntervalOpenClosed(NodeId::FromUint64(7), a, a));
  EXPECT_TRUE(InIntervalOpenClosed(NodeId::FromUint64(1000), a, a));
}

TEST(IntervalTest, OpenOpenExcludesEndpoints) {
  const NodeId a = NodeId::FromUint64(10);
  const NodeId b = NodeId::FromUint64(20);
  EXPECT_TRUE(InIntervalOpenOpen(NodeId::FromUint64(11), a, b));
  EXPECT_FALSE(InIntervalOpenOpen(a, a, b));
  EXPECT_FALSE(InIntervalOpenOpen(b, a, b));
}

TEST(IntervalTest, OpenOpenDegenerate) {
  const NodeId a = NodeId::FromUint64(9);
  EXPECT_FALSE(InIntervalOpenOpen(a, a, a));
  EXPECT_TRUE(InIntervalOpenOpen(NodeId::FromUint64(10), a, a));
}

TEST(NodeIdTest, HasherSpreadsValues) {
  NodeId::Hasher h;
  EXPECT_NE(h(NodeId::FromKey("x")), h(NodeId::FromKey("y")));
}

}  // namespace
}  // namespace rjoin::dht
