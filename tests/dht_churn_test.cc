// Tests of the incremental Chord protocol: joins via bootstrap,
// stabilization/notify rounds, finger repair, and healing after silent
// failures — the network dynamism the paper's Section 2/4 assumptions
// delegate to the DHT layer.

#include <gtest/gtest.h>

#include <set>

#include "dht/chord_network.h"
#include "util/random.h"

namespace rjoin::dht {
namespace {

NodeIndex BruteForceSuccessor(const ChordNetwork& net, const NodeId& key) {
  NodeIndex best = kInvalidNode;
  NodeId best_dist = NodeId::Max();
  for (NodeIndex i : net.AliveNodes()) {
    const NodeId dist = net.node(i).id().Subtract(key);
    if (best == kInvalidNode || dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

void ExpectAllLookupsCorrect(const ChordNetwork& net, uint64_t seed,
                             int lookups = 60) {
  Rng rng(seed);
  const auto alive = net.AliveNodes();
  for (int i = 0; i < lookups; ++i) {
    const NodeId key = NodeId::FromKey("lk:" + std::to_string(rng.Next()));
    const NodeIndex src = alive[rng.NextBounded(alive.size())];
    EXPECT_EQ(net.FindSuccessorFrom(src, key), BruteForceSuccessor(net, key))
        << "lookup " << i;
  }
}

TEST(ChordProtocolTest, StabilizedNetworkIsRingConsistent) {
  auto net = ChordNetwork::Create(24, 1);
  EXPECT_TRUE(net->RingConsistent());
}

TEST(ChordProtocolTest, FindSuccessorFromMatchesOracleWhenStable) {
  auto net = ChordNetwork::Create(40, 2);
  ExpectAllLookupsCorrect(*net, 77);
}

TEST(ChordProtocolTest, SingleJoinIntegratesAfterRounds) {
  auto net = ChordNetwork::Create(16, 3);
  auto joined =
      net->JoinViaBootstrap(NodeId::FromKey("newcomer"), net->AliveNodes()[0]);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Before any rounds the ring is not yet consistent (predecessors stale).
  EXPECT_FALSE(net->RingConsistent());
  net->RunProtocolRounds(3);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 78);
  // The newcomer is responsible for its own id.
  EXPECT_EQ(net->FindSuccessorFrom(net->AliveNodes()[0],
                                   NodeId::FromKey("newcomer")),
            *joined);
}

TEST(ChordProtocolTest, JoinRequiresAliveBootstrap) {
  auto net = ChordNetwork::Create(8, 4);
  const NodeIndex victim = net->AliveNodes()[0];
  ASSERT_TRUE(net->FailNode(victim).ok());
  EXPECT_FALSE(net->JoinViaBootstrap(NodeId::FromKey("x"), victim).ok());
}

TEST(ChordProtocolTest, ManySequentialJoins) {
  auto net = ChordNetwork::Create(8, 5);
  for (int i = 0; i < 24; ++i) {
    auto joined = net->JoinViaBootstrap(
        NodeId::FromKey("j:" + std::to_string(i)), net->AliveNodes()[0]);
    ASSERT_TRUE(joined.ok());
    net->RunProtocolRounds(2);
  }
  EXPECT_EQ(net->num_alive(), 32u);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 79);
}

TEST(ChordProtocolTest, FailureHealsThroughSuccessorLists) {
  auto net = ChordNetwork::Create(32, 6);
  // Fail three non-adjacent nodes silently (no Stabilize() oracle call).
  const auto alive = net->AliveNodes();
  ASSERT_TRUE(net->FailNode(alive[3]).ok());
  ASSERT_TRUE(net->FailNode(alive[11]).ok());
  ASSERT_TRUE(net->FailNode(alive[23]).ok());
  EXPECT_FALSE(net->RingConsistent());
  net->RunProtocolRounds(4);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 80);
}

TEST(ChordProtocolTest, AdjacentFailuresWithinSuccessorListHeal) {
  auto net = ChordNetwork::Create(32, 7);
  // Fail a run of adjacent nodes shorter than the successor list.
  const auto alive = net->AliveNodes();
  for (size_t i = 5; i < 5 + ChordNetwork::kSuccessorListLen - 1; ++i) {
    ASSERT_TRUE(net->FailNode(alive[i]).ok());
  }
  net->RunProtocolRounds(5);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 81);
}

class ChurnMixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnMixTest, LookupsConvergeAfterMixedChurn) {
  const uint64_t seed = GetParam();
  auto net = ChordNetwork::Create(24, seed);
  Rng rng(seed * 101 + 7);
  int joined_count = 0;
  for (int step = 0; step < 30; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      auto j = net->JoinViaBootstrap(
          NodeId::FromKey("churn:" + std::to_string(seed) + ":" +
                          std::to_string(step)),
          net->AliveNodes()[rng.NextBounded(net->num_alive())]);
      if (j.ok()) ++joined_count;
    } else if (net->num_alive() > 12) {
      const auto alive = net->AliveNodes();
      (void)net->FailNode(alive[rng.NextBounded(alive.size())]);
    }
    net->RunProtocolRounds(2);
  }
  net->RunProtocolRounds(3);
  EXPECT_TRUE(net->RingConsistent()) << "seed " << seed;
  ExpectAllLookupsCorrect(*net, seed * 3 + 1);
  EXPECT_GT(joined_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnMixTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ChordProtocolTest, FreshJoinerLookupsDegradeGracefully) {
  // A node that joined but has not fixed fingers yet still resolves
  // correct successors (through successor walks).
  auto net = ChordNetwork::Create(16, 8);
  auto joined =
      net->JoinViaBootstrap(NodeId::FromKey("slow"), net->AliveNodes()[0]);
  ASSERT_TRUE(joined.ok());
  // Stabilize the ring but never fix the newcomer's fingers.
  for (int r = 0; r < 4; ++r) {
    for (NodeIndex n : net->AliveNodes()) net->StabilizeOnce(n);
  }
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    const NodeId key = NodeId::FromKey("g:" + std::to_string(rng.Next()));
    EXPECT_EQ(net->FindSuccessorFrom(*joined, key),
              BruteForceSuccessor(*net, key));
  }
}

}  // namespace
}  // namespace rjoin::dht
