// Tests of the incremental Chord protocol: joins via bootstrap,
// stabilization/notify rounds, finger repair, and healing after silent
// failures — the network dynamism the paper's Section 2/4 assumptions
// delegate to the DHT layer. The in-band churn tests at the bottom drive
// the engine's live join/leave path *during* message delivery and assert
// that no envelope is lost or duplicated across a state handoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/evaluator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "util/random.h"

namespace rjoin::dht {
namespace {

NodeIndex BruteForceSuccessor(const ChordNetwork& net, const NodeId& key) {
  NodeIndex best = kInvalidNode;
  NodeId best_dist = NodeId::Max();
  for (NodeIndex i : net.AliveNodes()) {
    const NodeId dist = net.node(i).id().Subtract(key);
    if (best == kInvalidNode || dist < best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

void ExpectAllLookupsCorrect(const ChordNetwork& net, uint64_t seed,
                             int lookups = 60) {
  Rng rng(seed);
  const auto alive = net.AliveNodes();
  for (int i = 0; i < lookups; ++i) {
    const NodeId key = NodeId::FromKey("lk:" + std::to_string(rng.Next()));
    const NodeIndex src = alive[rng.NextBounded(alive.size())];
    EXPECT_EQ(net.FindSuccessorFrom(src, key), BruteForceSuccessor(net, key))
        << "lookup " << i;
  }
}

TEST(ChordProtocolTest, StabilizedNetworkIsRingConsistent) {
  auto net = ChordNetwork::Create(24, 1);
  EXPECT_TRUE(net->RingConsistent());
}

TEST(ChordProtocolTest, FindSuccessorFromMatchesOracleWhenStable) {
  auto net = ChordNetwork::Create(40, 2);
  ExpectAllLookupsCorrect(*net, 77);
}

TEST(ChordProtocolTest, SingleJoinIntegratesAfterRounds) {
  auto net = ChordNetwork::Create(16, 3);
  auto joined =
      net->JoinViaBootstrap(NodeId::FromKey("newcomer"), net->AliveNodes()[0]);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Before any rounds the ring is not yet consistent (predecessors stale).
  EXPECT_FALSE(net->RingConsistent());
  net->RunProtocolRounds(3);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 78);
  // The newcomer is responsible for its own id.
  EXPECT_EQ(net->FindSuccessorFrom(net->AliveNodes()[0],
                                   NodeId::FromKey("newcomer")),
            *joined);
}

TEST(ChordProtocolTest, JoinRequiresAliveBootstrap) {
  auto net = ChordNetwork::Create(8, 4);
  const NodeIndex victim = net->AliveNodes()[0];
  ASSERT_TRUE(net->FailNode(victim).ok());
  EXPECT_FALSE(net->JoinViaBootstrap(NodeId::FromKey("x"), victim).ok());
}

TEST(ChordProtocolTest, ManySequentialJoins) {
  auto net = ChordNetwork::Create(8, 5);
  for (int i = 0; i < 24; ++i) {
    auto joined = net->JoinViaBootstrap(
        NodeId::FromKey("j:" + std::to_string(i)), net->AliveNodes()[0]);
    ASSERT_TRUE(joined.ok());
    net->RunProtocolRounds(2);
  }
  EXPECT_EQ(net->num_alive(), 32u);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 79);
}

TEST(ChordProtocolTest, FailureHealsThroughSuccessorLists) {
  auto net = ChordNetwork::Create(32, 6);
  // Fail three non-adjacent nodes silently (no Stabilize() oracle call).
  const auto alive = net->AliveNodes();
  ASSERT_TRUE(net->FailNode(alive[3]).ok());
  ASSERT_TRUE(net->FailNode(alive[11]).ok());
  ASSERT_TRUE(net->FailNode(alive[23]).ok());
  EXPECT_FALSE(net->RingConsistent());
  net->RunProtocolRounds(4);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 80);
}

TEST(ChordProtocolTest, AdjacentFailuresWithinSuccessorListHeal) {
  auto net = ChordNetwork::Create(32, 7);
  // Fail a run of adjacent nodes shorter than the successor list.
  const auto alive = net->AliveNodes();
  for (size_t i = 5; i < 5 + ChordNetwork::kSuccessorListLen - 1; ++i) {
    ASSERT_TRUE(net->FailNode(alive[i]).ok());
  }
  net->RunProtocolRounds(5);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 81);
}

class ChurnMixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnMixTest, LookupsConvergeAfterMixedChurn) {
  const uint64_t seed = GetParam();
  auto net = ChordNetwork::Create(24, seed);
  Rng rng(seed * 101 + 7);
  int joined_count = 0;
  for (int step = 0; step < 30; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      auto j = net->JoinViaBootstrap(
          NodeId::FromKey("churn:" + std::to_string(seed) + ":" +
                          std::to_string(step)),
          net->AliveNodes()[rng.NextBounded(net->num_alive())]);
      if (j.ok()) ++joined_count;
    } else if (net->num_alive() > 12) {
      const auto alive = net->AliveNodes();
      (void)net->FailNode(alive[rng.NextBounded(alive.size())]);
    }
    net->RunProtocolRounds(2);
  }
  net->RunProtocolRounds(3);
  EXPECT_TRUE(net->RingConsistent()) << "seed " << seed;
  ExpectAllLookupsCorrect(*net, seed * 3 + 1);
  EXPECT_GT(joined_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnMixTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------ in-band splice churn ----

TEST(ChordProtocolTest, JoinAndSpliceKeepsRingConsistentWithoutRounds) {
  auto net = ChordNetwork::Create(24, 9);
  for (int i = 0; i < 8; ++i) {
    auto joined = net->JoinAndSplice(
        NodeId::FromKey("inband:" + std::to_string(i)),
        net->AliveNodes()[static_cast<size_t>(i) % net->num_alive()]);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    // No RunProtocolRounds: the splice must leave the ring exact.
    EXPECT_TRUE(net->RingConsistent()) << "after join " << i;
  }
  ExpectAllLookupsCorrect(*net, 91);
  // Greedy routing (what SendKey uses on cached ring ids) also converges:
  // Route() CHECK-fails internally if it cannot reach the responsible node.
  Rng rng(92);
  const auto alive = net->AliveNodes();
  for (int i = 0; i < 40; ++i) {
    const NodeId key = NodeId::FromKey("rk:" + std::to_string(rng.Next()));
    const NodeIndex src = alive[rng.NextBounded(alive.size())];
    EXPECT_EQ(net->Route(src, key).back(), net->SuccessorOf(key));
  }
}

TEST(ChordProtocolTest, LeaveNodeReturnsOrphanedRangeAndSplices) {
  auto net = ChordNetwork::Create(16, 10);
  const auto alive = net->AliveNodes();
  const NodeIndex victim = alive[5];
  const NodeId victim_id = net->node(victim).id();
  const NodeId pred_id = net->node(alive[4]).id();
  auto range = net->LeaveNode(victim);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  // The orphaned range is exactly (pred, victim]: the keys the departed
  // node was responsible for, now owned by its successor.
  EXPECT_EQ(range->low, pred_id);
  EXPECT_EQ(range->high, victim_id);
  EXPECT_TRUE(range->Contains(victim_id));
  EXPECT_FALSE(range->Contains(pred_id));
  EXPECT_EQ(net->SuccessorOf(victim_id), alive[6]);
  EXPECT_TRUE(net->RingConsistent());
  ExpectAllLookupsCorrect(*net, 93);
  // A departed node cannot leave twice.
  EXPECT_FALSE(net->LeaveNode(victim).ok());
}

TEST(ChordProtocolTest, LeaveNodeRefusesLastAliveNode) {
  auto net = ChordNetwork::Create(2, 11);
  const auto alive = net->AliveNodes();
  ASSERT_TRUE(net->LeaveNode(alive[0]).ok());
  // The survivor's range would have no owner.
  EXPECT_FALSE(net->LeaveNode(alive[1]).ok());
  EXPECT_EQ(net->num_alive(), 1u);
}

// ------------------------------------- engine churn during delivery ----

namespace {

sql::Catalog ChurnCatalog() {
  sql::Catalog c;
  EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B", "C"})).ok());
  EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B", "C"})).ok());
  return c;
}

}  // namespace

TEST(InBandChurnTest, NoEnvelopeLostOrDuplicatedAcrossHandoffs) {
  // Joins and leaves fire *between* publications whose cascades are still
  // in flight (no drain between bursts). After the final drain, the
  // message pool must balance exactly: every envelope acquired was
  // released — none leaked inside a handoff, none double-freed.
  auto network = ChordNetwork::Create(20, 13);
  sim::Simulator simulator;
  sim::FixedLatency latency(3);  // several ticks in flight per hop
  stats::MetricsRegistry metrics(network->num_total());
  Transport transport(network.get(), &simulator, &latency, &metrics,
                      Rng(13 * 31));
  sql::Catalog catalog = ChurnCatalog();
  core::EngineConfig cfg;
  cfg.keep_history = true;
  core::RJoinEngine engine(cfg, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  auto qid = engine.SubmitQuerySql(0, "SELECT R.B, S.C FROM R, S "
                                      "WHERE R.A = S.A");
  ASSERT_TRUE(qid.ok());
  simulator.Run();

  auto I = [](int64_t v) { return sql::Value::Int(v); };
  Rng rng(77);
  int scheduled_churn = 0;
  for (int burst = 0; burst < 6; ++burst) {
    // Publications whose 2k-key deliveries overlap the churn below.
    ASSERT_TRUE(engine.PublishTuple(1, "R", {I(burst), I(10 + burst),
                                             I(20 + burst)}).ok());
    ASSERT_TRUE(engine.PublishTuple(2, "S", {I(burst), I(30 + burst),
                                             I(40 + burst)}).ok());
    // Churn lands mid-delivery: one join, and (every other burst) a leave
    // of an earlier joiner — i.e. the handoff chain itself is in flight
    // while new tuples route.
    ASSERT_TRUE(engine
                    .ScheduleJoin(simulator.Now() + 1 + rng.NextBounded(4),
                                  NodeId::FromKey("inflight:" +
                                                  std::to_string(burst)),
                                  0)
                    .ok());
    ++scheduled_churn;
    if (burst >= 2 && burst % 2 == 0) {
      const NodeIndex victim = static_cast<NodeIndex>(20 + burst - 2);
      ASSERT_TRUE(
          engine.ScheduleLeave(simulator.Now() + 2 + rng.NextBounded(4),
                               victim)
              .ok());
      ++scheduled_churn;
    }
    simulator.RunUntil(simulator.Now() + 2);  // interleave, don't drain
  }
  simulator.Run();  // full drain

  const auto& churn = engine.churn_stats();
  EXPECT_EQ(churn.joins_applied + churn.leaves_applied + churn.ops_rejected,
            static_cast<uint64_t>(scheduled_churn));
  EXPECT_GT(churn.joins_applied, 0u);
  EXPECT_GT(churn.leaves_applied, 0u);
  EXPECT_GT(churn.handoff_messages, 0u);
  // Every emitted batch is installed exactly once; chained churn receipts
  // (re-forwarded slices) count as additional installs.
  EXPECT_EQ(churn.handoff_messages + churn.handoffs_reforwarded,
            churn.handoffs_installed);

  // Pool accounting: a drained system has zero outstanding envelopes, and
  // the next acquire recycles instead of allocating.
  const auto before = simulator.pool().stats();
  EXPECT_EQ(before.outstanding(), 0u)
      << "acquired=" << before.acquired << " released=" << before.released;
  {
    auto env = simulator.pool().Acquire();
    const auto after = simulator.pool().stats();
    EXPECT_EQ(after.envelopes_allocated, before.envelopes_allocated);
    EXPECT_EQ(after.recycled, before.recycled + 1);
  }

  // Completeness: the answers match the centralized oracle despite the
  // in-flight churn (forwarding + handoff probing fill every gap).
  sql::CentralizedEvaluator oracle(&catalog);
  auto iq = engine.FindQuery(*qid);
  ASSERT_NE(iq, nullptr);
  std::vector<std::string> expected;
  for (const auto& row :
       oracle.Evaluate(iq->spec(), iq->ins_time(), engine.history())) {
    expected.push_back(sql::AnswerRowKey(row));
  }
  std::vector<std::string> got;
  for (const auto& a : engine.AnswersFor(*qid)) {
    got.push_back(sql::AnswerRowKey(a.row));
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(InBandChurnTest, RoutingOnCachedRingIdsFindsMovedState) {
  // After a join takes over part of the ring, SendKey still routes on the
  // interner's cached ring ids — the ids never change; only SuccessorOf
  // does. The joined node must end up holding stored state (the handoff)
  // and receiving new deliveries for its range.
  auto network = ChordNetwork::Create(12, 17);
  sim::Simulator simulator;
  sim::FixedLatency latency(1);
  stats::MetricsRegistry metrics(network->num_total());
  Transport transport(network.get(), &simulator, &latency, &metrics,
                      Rng(17 * 31));
  sql::Catalog catalog = ChurnCatalog();
  core::EngineConfig cfg;
  cfg.keep_history = true;
  core::RJoinEngine engine(cfg, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  ASSERT_TRUE(
      engine.SubmitQuerySql(0, "SELECT R.B, S.C FROM R, S WHERE R.A = S.A")
          .ok());
  simulator.Run();
  auto I = [](int64_t v) { return sql::Value::Int(v); };
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(engine.PublishTuple(1, "R", {I(i), I(i), I(i)}).ok());
  }
  simulator.Run();

  // Join enough nodes that some take over key ranges with stored state.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine
                    .ScheduleJoin(simulator.Now(),
                                  NodeId::FromKey("mover:" +
                                                  std::to_string(i)),
                                  0)
                    .ok());
    simulator.Run();
  }
  ASSERT_EQ(engine.churn_stats().joins_applied, 10u);
  ASSERT_GT(engine.churn_stats().handoff_messages, 0u);

  uint64_t joined_storage = 0;
  for (NodeIndex n = 12; n < metrics.num_nodes(); ++n) {
    joined_storage +=
        static_cast<uint64_t>(std::max<int64_t>(0,
            metrics.node(n).storage_current));
  }
  EXPECT_GT(joined_storage, 0u)
      << "no handoff reached any joined node's store";

  // New deliveries for the moved ranges land at the joined nodes too.
  const uint64_t qpl_before = [&] {
    uint64_t q = 0;
    for (NodeIndex n = 12; n < metrics.num_nodes(); ++n) {
      q += metrics.node(n).qpl;
    }
    return q;
  }();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(engine.PublishTuple(2, "S", {I(i), I(i), I(i)}).ok());
  }
  simulator.Run();
  uint64_t qpl_after = 0;
  for (NodeIndex n = 12; n < metrics.num_nodes(); ++n) {
    qpl_after += metrics.node(n).qpl;
  }
  EXPECT_GT(qpl_after, qpl_before);
}

TEST(ChordProtocolTest, FreshJoinerLookupsDegradeGracefully) {
  // A node that joined but has not fixed fingers yet still resolves
  // correct successors (through successor walks).
  auto net = ChordNetwork::Create(16, 8);
  auto joined =
      net->JoinViaBootstrap(NodeId::FromKey("slow"), net->AliveNodes()[0]);
  ASSERT_TRUE(joined.ok());
  // Stabilize the ring but never fix the newcomer's fingers.
  for (int r = 0; r < 4; ++r) {
    for (NodeIndex n : net->AliveNodes()) net->StabilizeOnce(n);
  }
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    const NodeId key = NodeId::FromKey("g:" + std::to_string(rng.Next()));
    EXPECT_EQ(net->FindSuccessorFrom(*joined, key),
              BruteForceSuccessor(*net, key));
  }
}

}  // namespace
}  // namespace rjoin::dht
