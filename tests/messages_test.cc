// Tests of the typed zero-allocation message plane: MessageTask taxonomy,
// Envelope pooling (slab growth stops at the in-flight high-water mark —
// steady-state delivery performs zero heap allocations per message, on the
// serial simulator and on the sharded runtime), MultiSend envelope chains,
// the RicRequest/RicReply direct exchange, and the auto-tuned round width.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/messages.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_runtime.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/metrics.h"

namespace rjoin::core {
namespace {

// ----------------------------------------------------------- MessageTask --

TEST(MessageTaskTest, KindTracksAlternative) {
  EXPECT_EQ(MessageTask().kind(), MessageKind::kNone);
  EXPECT_TRUE(MessageTask().empty());
  EXPECT_EQ(MessageTask(TuplePublish{}).kind(), MessageKind::kTuplePublish);
  EXPECT_EQ(MessageTask(QueryIndex{}).kind(), MessageKind::kQueryIndex);
  EXPECT_EQ(MessageTask(Rewrite{}).kind(), MessageKind::kRewrite);
  EXPECT_EQ(MessageTask(RicRequest{}).kind(), MessageKind::kRicRequest);
  EXPECT_EQ(MessageTask(RicReply{}).kind(), MessageKind::kRicReply);
  EXPECT_EQ(MessageTask(AnswerDeliver{}).kind(), MessageKind::kAnswerDeliver);
  EXPECT_EQ(MessageTask(Control{[] {}}).kind(), MessageKind::kControl);
}

TEST(MessageTaskTest, ResetDropsPayload) {
  AnswerDeliver msg;
  msg.query_id = 7;
  msg.row_len = 1;
  msg.row[0] = 42;
  MessageTask task(std::move(msg));
  EXPECT_EQ(task.kind(), MessageKind::kAnswerDeliver);
  task.Reset();
  EXPECT_EQ(task.kind(), MessageKind::kNone);
}

TEST(MessageTaskTest, KindNamesAreDistinct) {
  std::vector<std::string> names;
  for (MessageKind k :
       {MessageKind::kNone, MessageKind::kTuplePublish,
        MessageKind::kQueryIndex, MessageKind::kRewrite,
        MessageKind::kRicRequest, MessageKind::kRicReply,
        MessageKind::kAnswerDeliver, MessageKind::kControl}) {
    names.push_back(MessageKindName(k));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

// ----------------------------------------------------------- MessagePool --

TEST(MessagePoolTest, SteadyStateRecyclesWithoutAllocating) {
  MessagePool pool;
  for (int i = 0; i < 1000; ++i) {
    EnvelopeRef env = pool.Acquire();
    env->task = MessageTask(AnswerDeliver{});
  }  // released on scope exit, so at most one envelope is ever in flight
  const MessagePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 1000u);
  EXPECT_EQ(stats.envelopes_allocated, 1u);
  EXPECT_EQ(stats.recycled, 999u);
  EXPECT_EQ(stats.slabs_allocated, 1u);
}

TEST(MessagePoolTest, AllocationsTrackHighWaterMarkOnly) {
  MessagePool pool;
  std::vector<EnvelopeRef> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.Acquire());
  held.clear();  // all 10 back on the freelist
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) held.push_back(pool.Acquire());
    held.clear();
  }
  EXPECT_EQ(pool.stats().envelopes_allocated, 10u);
  EXPECT_EQ(pool.stats().acquired, 510u);
}

TEST(MessagePoolTest, ReleasingAChainReturnsEveryEnvelope) {
  MessagePool pool;
  {
    EnvelopeRef head = pool.Acquire();
    Envelope* tail = head.get();
    for (int i = 0; i < 4; ++i) {
      tail->link = pool.Acquire().release();
      tail = tail->link;
    }
  }  // dropping the head must walk the chain
  EXPECT_EQ(pool.stats().envelopes_allocated, 5u);
  std::vector<EnvelopeRef> again;
  for (int i = 0; i < 5; ++i) again.push_back(pool.Acquire());
  // All five came back through the freelist; no new storage.
  EXPECT_EQ(pool.stats().envelopes_allocated, 5u);
  EXPECT_EQ(pool.stats().recycled, 5u);
}

// ------------------------------------------------- end-to-end harnesses --

struct Harness {
  explicit Harness(size_t nodes, uint32_t shards = 0, uint64_t seed = 7)
      : catalog(TestCatalog()),
        network(dht::ChordNetwork::Create(nodes, seed)),
        latency(1),
        metrics(network->num_total()),
        transport(network.get(), &simulator, &latency, &metrics,
                  Rng(seed * 31)),
        engine(EngineConfig{}, &catalog, network.get(), &transport,
               &simulator, &metrics) {
    if (shards > 0) {
      runtime = std::make_unique<runtime::ShardedRuntime>(
          runtime::ShardedRuntime::Options{shards, 1}, network->num_total(),
          &metrics);
      router = std::make_unique<runtime::ShardRouter>(runtime.get(),
                                                      seed * 31);
      transport.set_router(router.get());
      engine.AttachRuntime(runtime.get());
    }
  }

  static sql::Catalog TestCatalog() {
    sql::Catalog c;
    EXPECT_TRUE(c.AddRelation(sql::Schema("R", {"A", "B"})).ok());
    EXPECT_TRUE(c.AddRelation(sql::Schema("S", {"A", "B"})).ok());
    return c;
  }

  void Run() {
    if (runtime != nullptr) {
      runtime->Run();
    } else {
      simulator.Run();
    }
  }

  /// Envelope allocations across every pool the stack uses (serial
  /// simulator pool + shard pools).
  uint64_t EnvelopesAllocated() {
    uint64_t total = simulator.pool().stats().envelopes_allocated;
    if (runtime != nullptr) {
      for (uint32_t s = 0; s < runtime->shards(); ++s) {
        total += runtime->shard_pool(s)->stats().envelopes_allocated;
      }
    }
    return total;
  }

  sql::Catalog catalog;
  std::unique_ptr<dht::ChordNetwork> network;
  sim::Simulator simulator;
  sim::FixedLatency latency;
  stats::MetricsRegistry metrics;
  dht::Transport transport;
  RJoinEngine engine;
  // Declared last: workers join (and shard heaps drain into still-live
  // pools) before the transport and simulator go away.
  std::unique_ptr<runtime::ShardedRuntime> runtime;
  std::unique_ptr<runtime::ShardRouter> router;
};

std::vector<sql::Value> Row(int64_t a, int64_t b) {
  return {sql::Value::Int(a), sql::Value::Int(b)};
}

/// Publishes `count` tuples round-robin over both relations, draining after
/// each (windowed queries + sweeps keep stored state bounded).
void Stream(Harness& h, int count, int value_space = 5) {
  for (int i = 0; i < count; ++i) {
    const char* rel = (i % 2 == 0) ? "R" : "S";
    ASSERT_TRUE(
        h.engine.PublishTuple(1, rel, Row(i % value_space, i)).ok());
    h.Run();
    if (i % 8 == 7) h.engine.SweepWindows();
  }
}

void SubmitWindowedJoin(Harness& h) {
  auto parsed = sql::Parser::Parse(
      "SELECT R.B, S.B FROM R, S WHERE R.A = S.A WINDOW 8 TUPLES");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto id = h.engine.SubmitQuery(0, std::move(*parsed));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  h.Run();
}

TEST(ZeroAllocationTest, SerialSteadyStateAllocatesNoEnvelopes) {
  Harness h(24);
  SubmitWindowedJoin(h);
  Stream(h, 48);  // warm-up: pools grow to the in-flight high-water mark
  const uint64_t allocated_after_warmup = h.EnvelopesAllocated();
  const uint64_t acquired_after_warmup = h.simulator.pool().stats().acquired;
  Stream(h, 96);  // steady state: every envelope is a freelist hit
  EXPECT_EQ(h.EnvelopesAllocated(), allocated_after_warmup)
      << "steady-state delivery allocated envelopes";
  EXPECT_GT(h.simulator.pool().stats().acquired, acquired_after_warmup + 500)
      << "warm stream stopped producing messages — vacuous check";
}

TEST(ZeroAllocationTest, ShardedSteadyStateAllocatesNoEnvelopes) {
  Harness h(24, /*shards=*/3);
  SubmitWindowedJoin(h);
  Stream(h, 48);
  const uint64_t allocated_after_warmup = h.EnvelopesAllocated();
  Stream(h, 96);
  EXPECT_EQ(h.EnvelopesAllocated(), allocated_after_warmup)
      << "steady-state sharded delivery allocated envelopes";
}

TEST(ZeroAllocationTest, SerialAndShardedAnswersAgree) {
  // The same bounded stream on both pumps: answer multisets must agree
  // (FixedLatency + no rate reads in windows-only trigger path keeps the
  // comparison exact in counts).
  Harness serial(24);
  Harness sharded(24, /*shards=*/3);
  SubmitWindowedJoin(serial);
  SubmitWindowedJoin(sharded);
  Stream(serial, 64);
  Stream(sharded, 64);
  EXPECT_GT(serial.engine.answers().size(), 0u);
  EXPECT_EQ(serial.engine.answers().size(), sharded.engine.answers().size());
}

// ------------------------------------------------- RicRequest / RicReply --

TEST(RicExchangeTest, PrefetchWarmsTheCandidateTable) {
  Harness h(24);
  // Give the responsible node a non-zero rate to report.
  ASSERT_TRUE(h.engine.ObserveStreamHistory("R", Row(1, 2)).ok());
  const IndexKey key = AttributeKey("R", "A");
  const dht::NodeIndex requester = h.network->AliveNodes()[0];
  ASSERT_FALSE(h.engine.HasCachedRic(requester, key.text));
  h.engine.PrefetchRic(requester, key);
  h.Run();
  EXPECT_TRUE(h.engine.HasCachedRic(requester, key.text));
  // Request route + direct reply are charged as RIC traffic.
  EXPECT_GT(h.metrics.total_ric_messages(), 0u);
  EXPECT_EQ(h.metrics.total_messages(), h.metrics.total_ric_messages());
}

TEST(RicExchangeTest, PrefetchWorksOnTheShardedRuntime) {
  Harness h(24, /*shards=*/3);
  ASSERT_TRUE(h.engine.ObserveStreamHistory("S", Row(3, 4)).ok());
  const IndexKey key = AttributeKey("S", "B");
  const dht::NodeIndex requester = h.network->AliveNodes()[1];
  h.engine.PrefetchRic(requester, key);
  h.Run();
  EXPECT_TRUE(h.engine.HasCachedRic(requester, key.text));
}

// ---------------------------------------------------------- round width --

TEST(AutoRoundWidthTest, TracksTheLatencyLookahead) {
  sim::FixedLatency fixed(3);
  EXPECT_EQ(runtime::AutoRoundWidth(fixed), 3u);
  sim::UniformLatency uniform(2, 9);
  EXPECT_EQ(runtime::AutoRoundWidth(uniform), 2u);
  sim::BurstyLatency bursty(2, 7, 0.1);
  EXPECT_EQ(runtime::AutoRoundWidth(bursty), 2u);
  // Zero-capable models fall back to pure deferral rounds of width 1.
  sim::UniformLatency zero_capable(0, 4);
  EXPECT_EQ(runtime::AutoRoundWidth(zero_capable), 1u);
}

}  // namespace
}  // namespace rjoin::core
