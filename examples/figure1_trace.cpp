// The paper's Figure 1, traced event by event.
//
// Node x submits
//   q = SELECT S.B, M.A FROM R,S,J,M
//       WHERE R.A=S.A AND S.B=J.B AND J.C=M.C
// and four tuples arrive: t1=(2,5,8) of R, t2=(2,6,3) of S, t3=(9,1,2) of M
// (stored, waits), t4=(7,6,2) of J. The final rewrite meets the stored M
// tuple and the answer S.B=6, M.A=9 is created.
//
// This example prints both views of each event: the reference textual
// rewriting (sql::Rewriter, exactly the paper's q -> q1 -> q2 -> q3) and
// the live distributed run (RJoinEngine), which must deliver the same
// answer.

#include <iostream>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/parser.h"
#include "sql/rewriter.h"
#include "sql/schema.h"
#include "stats/metrics.h"

using namespace rjoin;

int main() {
  sql::Catalog catalog;
  (void)catalog.AddRelation(sql::Schema("R", {"A", "B", "C"}));
  (void)catalog.AddRelation(sql::Schema("S", {"A", "B", "C"}));
  (void)catalog.AddRelation(sql::Schema("J", {"A", "B", "C"}));
  (void)catalog.AddRelation(sql::Schema("M", {"A", "B", "C"}));

  const char* kQueryText =
      "SELECT S.B, M.A FROM R,S,J,M "
      "WHERE R.A=S.A AND S.B=J.B AND J.C=M.C";

  // ---- Reference view: the textual rewrites of Figure 1. -------------
  auto q = sql::Parser::Parse(kQueryText);
  if (!q.ok()) {
    std::cerr << q.status().ToString() << "\n";
    return 1;
  }
  sql::Rewriter rewriter(&catalog);
  auto I = [](int64_t v) { return sql::Value::Int(v); };

  std::cout << "Event 1: node x submits\n  q  = " << q->ToString() << "\n\n";

  auto t1 = sql::MakeTuple("R", {I(2), I(5), I(8)}, 1, 1, 1);
  auto q1 = rewriter.Rewrite(*q, *t1);
  if (!q1.ok()) { std::cerr << q1.status().ToString() << "\n"; return 1; }
  std::cout << "Event 2: tuple t1=" << t1->ToString()
            << " arrives; r1 rewrites q into\n  q1 = " << q1->ToString()
            << "\n  (indexed at Successor(Hash(S+A+'2')))\n\n";

  auto t2 = sql::MakeTuple("S", {I(2), I(6), I(3)}, 2, 2, 2);
  auto q2 = rewriter.Rewrite(*q1, *t2);
  if (!q2.ok()) { std::cerr << q2.status().ToString() << "\n"; return 1; }
  std::cout << "Event 3: tuple t2=" << t2->ToString()
            << " arrives; r2 rewrites q1 into\n  q2 = " << q2->ToString()
            << "\n  (indexed at Successor(Hash(J+B+'6')))\n\n";

  auto t3 = sql::MakeTuple("M", {I(9), I(1), I(2)}, 3, 3, 3);
  std::cout << "Event 4: tuple t3=" << t3->ToString()
            << " arrives; r4 stores t3 (no waiting query yet)\n\n";

  auto t4 = sql::MakeTuple("J", {I(7), I(6), I(2)}, 4, 4, 4);
  auto q3 = rewriter.Rewrite(*q2, *t4);
  if (!q3.ok()) { std::cerr << q3.status().ToString() << "\n"; return 1; }
  std::cout << "Event 5: tuple t4=" << t4->ToString()
            << " arrives; r3 rewrites q2 into\n  q3 = " << q3->ToString()
            << "\n  q3 travels to r4 where stored t3 triggers it:\n";
  auto q_final = rewriter.Rewrite(*q3, *t3);
  if (!q_final.ok()) {
    std::cerr << q_final.status().ToString() << "\n";
    return 1;
  }
  std::cout << "  where clause is now true -> answer "
            << "(S.B=" << sql::Rewriter::ExtractAnswer(*q_final)[0]
                               .ToDisplayString()
            << ", M.A=" << sql::Rewriter::ExtractAnswer(*q_final)[1]
                                .ToDisplayString()
            << ")\n\n";

  // ---- Live view: the distributed engine on a 48-node overlay. -------
  auto network = dht::ChordNetwork::Create(48, 7);
  sim::Simulator simulator;
  sim::FixedLatency latency(1);
  stats::MetricsRegistry metrics(network->num_total());
  dht::Transport transport(network.get(), &simulator, &latency, &metrics,
                           Rng(77));
  core::RJoinEngine engine({}, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  auto qid = engine.SubmitQuerySql(0, kQueryText);
  if (!qid.ok()) {
    std::cerr << qid.status().ToString() << "\n";
    return 1;
  }
  simulator.Run();
  struct Pub {
    const char* rel;
    std::vector<sql::Value> vals;
  };
  const Pub pubs[] = {
      {"R", {I(2), I(5), I(8)}},
      {"S", {I(2), I(6), I(3)}},
      {"M", {I(9), I(1), I(2)}},
      {"J", {I(7), I(6), I(2)}},
  };
  dht::NodeIndex publisher = 5;
  for (const Pub& p : pubs) {
    (void)engine.PublishTuple(publisher++, p.rel, p.vals);
    simulator.Run();
  }

  const auto answers = engine.AnswersFor(*qid);
  std::cout << "Distributed run: " << answers.size()
            << " answer(s) delivered to node x";
  for (const auto& a : answers) {
    std::cout << " -> (S.B=" << a.row[0].ToDisplayString()
              << ", M.A=" << a.row[1].ToDisplayString() << ")";
  }
  std::cout << "\nusing " << metrics.total_messages()
            << " messages; both views agree.\n";
  return answers.size() == 1 ? 0 : 1;
}
