// Message delays and the attribute-level tuple table (Section 4).
//
// Example 1 of the paper: a query and a matching tuple race through the
// network; if the tuple reaches the rendezvous node first and is discarded,
// the answer is lost. The ALTT keeps attribute-level tuples for Delta so
// the delayed query still meets them (eventual completeness, Theorem 1).
//
// This example runs the race under heavy-traffic latencies with and
// without the ALTT and reports how many interleavings lose answers.

#include <iostream>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "util/random.h"

using namespace rjoin;

namespace {

/// Runs the Example-1 race once; returns true iff the answer arrived.
bool RaceOnce(uint64_t seed, bool enable_altt) {
  auto network = dht::ChordNetwork::Create(32, seed);
  sim::Simulator simulator;
  // Heavy network traffic: one hop in ten takes 80 ticks instead of 1.
  sim::BurstyLatency latency(1, 80, 0.1);
  stats::MetricsRegistry metrics(network->num_total());
  dht::Transport transport(network.get(), &simulator, &latency, &metrics,
                           Rng(seed * 17));

  sql::Catalog catalog;
  (void)catalog.AddRelation(sql::Schema("R", {"A1", "A2", "A3"}));
  (void)catalog.AddRelation(sql::Schema("S", {"B1", "B2", "B3"}));

  core::EngineConfig config;
  config.enable_altt = enable_altt;
  config.altt_delta = 1 << 16;  // A comfortable overestimate of Delta.
  core::RJoinEngine engine(config, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  // The query of Example 1, submitted at T0...
  auto qid = engine.SubmitQuerySql(
      0, "SELECT R.A1, S.B1 FROM R, S WHERE R.A2 = S.B2");
  if (!qid.ok()) {
    std::cerr << qid.status().ToString() << "\n";
    return false;
  }
  // ...while matching tuples are published concurrently (pubT >= insT, but
  // the tuple may win the race to Successor(Hash(R + A2))).
  auto I = [](int64_t v) { return sql::Value::Int(v); };
  (void)engine.PublishTuple(5, "R", {I(1), I(2), I(3)});
  (void)engine.PublishTuple(9, "S", {I(10), I(2), I(30)});
  simulator.Run();

  return !engine.AnswersFor(*qid).empty();
}

}  // namespace

int main() {
  const int kRuns = 40;
  int lost_without = 0, lost_with = 0;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    if (!RaceOnce(seed, /*enable_altt=*/false)) ++lost_without;
    if (!RaceOnce(seed, /*enable_altt=*/true)) ++lost_with;
  }
  std::cout << "Example-1 race over " << kRuns << " interleavings:\n";
  std::cout << "  without ALTT: " << lost_without << " lost answers\n";
  std::cout << "  with ALTT:    " << lost_with << " lost answers\n";
  if (lost_with != 0) {
    std::cerr << "ALTT must never lose answers (Theorem 1)\n";
    return 1;
  }
  std::cout << "The ALTT recovers every racy interleaving, as Theorem 1 "
               "promises.\n";
  return 0;
}
