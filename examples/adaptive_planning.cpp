// Adaptive planning with RIC information (Sections 6-7).
//
// Two engines evaluate the same continuous joins over the same streams. One
// indexes queries at the first WHERE-clause expression (the naive Section 3
// strategy); the other requests rate-of-incoming-tuple (RIC) information
// and places queries where few tuples arrive. The rate-skewed workload —
// one hot stream, one trickle — makes the difference visible directly.

#include <iostream>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "util/random.h"

using namespace rjoin;

namespace {

struct Run {
  uint64_t messages = 0;
  uint64_t qpl = 0;
  uint64_t answers = 0;
};

Run Evaluate(core::PlannerPolicy policy) {
  auto network = dht::ChordNetwork::Create(64, 11);
  sim::Simulator simulator;
  sim::FixedLatency latency(1);
  stats::MetricsRegistry metrics(network->num_total());
  dht::Transport transport(network.get(), &simulator, &latency, &metrics,
                           Rng(5));

  sql::Catalog catalog;
  // Clicks is a firehose; Purchases is a trickle.
  (void)catalog.AddRelation(sql::Schema("Clicks", {"user", "page"}));
  (void)catalog.AddRelation(sql::Schema("Purchases", {"user", "amount"}));

  core::EngineConfig config;
  config.policy = policy;
  core::RJoinEngine engine(config, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  Rng rng(21);
  auto I = [](int64_t v) { return sql::Value::Int(v); };

  // Stream history so RIC has a last window to look at: ~50 clicks per
  // purchase.
  for (int i = 0; i < 200; ++i) {
    (void)engine.ObserveStreamHistory(
        "Clicks", {I(static_cast<int64_t>(rng.NextBounded(50))),
                   I(static_cast<int64_t>(rng.NextBounded(1000)))});
    if (i % 50 == 0) {
      (void)engine.ObserveStreamHistory(
          "Purchases", {I(static_cast<int64_t>(rng.NextBounded(50))),
                        I(static_cast<int64_t>(rng.NextBounded(100)))});
    }
  }

  // 40 analysts watch for purchases attributable to clicks. A query indexed
  // under Clicks.user is rewritten on *every* click; indexed under
  // Purchases.user it is rewritten only on the rare purchases.
  for (int i = 0; i < 40; ++i) {
    auto qid = engine.SubmitQuerySql(
        static_cast<dht::NodeIndex>(i % 64),
        "SELECT Clicks.page, Purchases.amount FROM Clicks, Purchases "
        "WHERE Clicks.user = Purchases.user");
    if (!qid.ok()) std::cerr << qid.status().ToString() << "\n";
  }
  simulator.Run();

  for (int i = 0; i < 600; ++i) {
    const auto node = static_cast<dht::NodeIndex>(rng.NextBounded(64));
    if (i % 50 == 17) {
      (void)engine.PublishTuple(
          node, "Purchases", {I(static_cast<int64_t>(rng.NextBounded(50))),
                              I(static_cast<int64_t>(rng.NextBounded(100)))});
    } else {
      (void)engine.PublishTuple(
          node, "Clicks", {I(static_cast<int64_t>(rng.NextBounded(50))),
                           I(static_cast<int64_t>(rng.NextBounded(1000)))});
    }
    simulator.Run();
    simulator.RunUntil(simulator.Now() + 2);
  }

  Run out;
  out.messages = metrics.total_messages();
  out.qpl = metrics.total_qpl();
  out.answers = metrics.answers_delivered();
  return out;
}

}  // namespace

int main() {
  const Run naive = Evaluate(core::PlannerPolicy::kFirstInClause);
  const Run ric = Evaluate(core::PlannerPolicy::kRic);

  std::cout << "strategy            messages        QPL    answers\n";
  std::cout << "first-in-clause   " << naive.messages << "   " << naive.qpl
            << "   " << naive.answers << "\n";
  std::cout << "RIC (RJoin)       " << ric.messages << "   " << ric.qpl
            << "   " << ric.answers << "\n";

  if (ric.answers != naive.answers) {
    std::cerr << "planning must not change the answers!\n";
    return 1;
  }
  if (ric.qpl >= naive.qpl) {
    std::cerr << "expected RIC planning to reduce query processing load\n";
    return 1;
  }
  std::cout << "RIC planning saved "
            << 100.0 - 100.0 * static_cast<double>(ric.qpl) /
                           static_cast<double>(naive.qpl)
            << "% of query processing load, with identical answers.\n";
  return 0;
}
