// Network monitoring over a DHT — the class of application that motivates
// continuous multi-way joins (intrusion-detection style correlation of
// several event streams, cf. the distributed-triggers and stream-monitoring
// work the paper cites).
//
// Three append-only streams are published by sensor nodes all over the
// overlay:
//   Alerts(host, sig, severity)  — IDS alerts
//   Flows(src, dst, bytes)       — flow records
//   Logins(host, user, ok)       — authentication events
//
// The monitoring query correlates them inside a sliding window: an alert on
// a host that also shows a large inbound flow and a failed login within the
// same window is worth reporting.

#include <iostream>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/metrics.h"
#include "util/random.h"

using namespace rjoin;

int main() {
  auto network = dht::ChordNetwork::Create(64, 3);
  sim::Simulator simulator;
  sim::FixedLatency latency(1);
  stats::MetricsRegistry metrics(network->num_total());
  dht::Transport transport(network.get(), &simulator, &latency, &metrics,
                           Rng(99));

  sql::Catalog catalog;
  (void)catalog.AddRelation(sql::Schema("Alerts", {"host", "sig", "sev"}));
  (void)catalog.AddRelation(sql::Schema("Flows", {"src", "dst", "bytes"}));
  (void)catalog.AddRelation(sql::Schema("Logins", {"host", "user", "ok"}));

  core::EngineConfig config;
  core::RJoinEngine engine(config, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  // The security console at node 0 watches for correlated incidents within
  // a 64-tuple sliding window; only failed logins (ok = 0) are relevant.
  auto qid = engine.SubmitQuerySql(
      0,
      "SELECT Alerts.host, Alerts.sig, Flows.src, Logins.user "
      "FROM Alerts, Flows, Logins "
      "WHERE Alerts.host = Flows.dst AND Flows.dst = Logins.host "
      "AND Logins.ok = 0 "
      "WINDOW 64 TUPLES");
  if (!qid.ok()) {
    std::cerr << qid.status().ToString() << "\n";
    return 1;
  }
  simulator.Run();

  // Sensors publish events; host 7 is under attack around event 40.
  Rng rng(7);
  auto rand_node = [&] {
    return static_cast<dht::NodeIndex>(rng.NextBounded(64));
  };
  auto I = [](int64_t v) { return sql::Value::Int(v); };
  for (int i = 0; i < 120; ++i) {
    const int64_t host = static_cast<int64_t>(rng.NextBounded(16));
    switch (i % 3) {
      case 0:
        (void)engine.PublishTuple(rand_node(), "Flows",
                                  {I(host), I((i > 35 && i < 60) ? 7 : host),
                                   I(1000 + i)});
        break;
      case 1:
        (void)engine.PublishTuple(
            rand_node(), "Logins",
            {I((i > 35 && i < 60) ? 7 : host), I(100 + host),
             I(i % 5 == 1 ? 0 : 1)});
        break;
      default:
        (void)engine.PublishTuple(rand_node(), "Alerts",
                                  {I(i > 38 && i < 55 ? 7 : host),
                                   I(4000 + (i % 3)), I(i % 4)});
        break;
    }
    simulator.Run();
    simulator.RunUntil(simulator.Now() + 4);
    if (i % 16 == 15) engine.SweepWindows();
  }

  const auto incidents = engine.AnswersFor(*qid);
  std::cout << "correlated incidents: " << incidents.size() << "\n";
  for (size_t i = 0; i < incidents.size() && i < 5; ++i) {
    const auto& row = incidents[i].row;
    std::cout << "  host=" << row[0].ToDisplayString()
              << " sig=" << row[1].ToDisplayString()
              << " flow-src=" << row[2].ToDisplayString()
              << " user=" << row[3].ToDisplayString() << "\n";
  }
  std::cout << "network cost: " << metrics.total_messages()
            << " messages across " << network->num_alive() << " nodes\n";
  return incidents.empty() ? 1 : 0;
}
