// Quickstart: a 32-node Chord network evaluating one continuous 3-way join.
//
// Reproduces the running example of the paper (Figure 1): the query is
// submitted first, tuples stream in afterwards, and RJoin incrementally
// rewrites and re-indexes the query until answers form.

#include <iostream>

#include "core/engine.h"
#include "dht/chord_network.h"
#include "dht/transport.h"
#include "sim/latency.h"
#include "sim/simulator.h"
#include "sql/schema.h"
#include "stats/metrics.h"

using namespace rjoin;

int main() {
  // 1. The substrate: a stabilized 32-node Chord overlay, a discrete-event
  //    simulator, and the hop-counting message transport.
  auto network = dht::ChordNetwork::Create(32, /*seed=*/7);
  sim::Simulator simulator;
  sim::FixedLatency latency(1);
  stats::MetricsRegistry metrics(network->num_total());
  dht::Transport transport(network.get(), &simulator, &latency, &metrics,
                           Rng(1234));

  // 2. The schema: three append-only relations.
  sql::Catalog catalog;
  (void)catalog.AddRelation(sql::Schema("R", {"A", "B", "C"}));
  (void)catalog.AddRelation(sql::Schema("S", {"A", "B", "C"}));
  (void)catalog.AddRelation(sql::Schema("M", {"B", "C", "D"}));

  // 3. The engine, with the paper's defaults (RIC planning + ALTT).
  core::EngineConfig config;
  config.keep_history = true;
  core::RJoinEngine engine(config, &catalog, network.get(), &transport,
                           &simulator, &metrics);

  // 4. Node 0 submits a continuous 3-way join.
  auto qid = engine.SubmitQuerySql(
      0, "SELECT R.B, M.D FROM R, S, M WHERE R.A = S.A AND S.B = M.B");
  if (!qid.ok()) {
    std::cerr << "submit failed: " << qid.status().ToString() << "\n";
    return 1;
  }
  simulator.Run();

  // 5. Tuples arrive over time, published by different nodes.
  auto publish = [&](dht::NodeIndex node, const std::string& rel,
                     std::vector<int64_t> ints) {
    std::vector<sql::Value> vals;
    for (int64_t v : ints) vals.push_back(sql::Value::Int(v));
    auto t = engine.PublishTuple(node, rel, std::move(vals));
    if (!t.ok()) std::cerr << "publish failed: " << t.status().ToString() << "\n";
    simulator.Run();
  };

  publish(3, "R", {2, 5, 8});    // R(2,5,8): triggers the input query
  publish(9, "M", {6, 1, 42});   // M(6,1,42): stored, waits for the rewrite
  publish(17, "S", {2, 6, 3});   // S(2,6,3): joins R on A=2, M on B=6

  // 6. Answers were delivered directly to node 0, the query owner.
  std::cout << "answers for query " << *qid << ":\n";
  for (const core::Answer& a : engine.AnswersFor(*qid)) {
    std::cout << "  (";
    for (size_t i = 0; i < a.row.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << a.row[i].ToDisplayString();
    }
    std::cout << ")  delivered at t=" << a.delivered_at << "\n";
  }

  std::cout << "network totals: " << metrics.total_messages()
            << " messages, QPL " << metrics.total_qpl() << ", stored items "
            << metrics.total_storage() << "\n";
  return engine.AnswersFor(*qid).empty() ? 1 : 0;
}
